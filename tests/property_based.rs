//! Property-based tests over the core invariants, spanning crates.

use patchitpy::diff::{lcs, lcs_len, lcs_similarity, SequenceMatcher};
use patchitpy::lex::{tokenize, TokenKind};
use patchitpy::rx::Regex;
use patchitpy::stats::{describe, percentile, rank_sum};
use patchitpy::{Detector, Patcher};
use proptest::prelude::*;

// ---- lexer ----------------------------------------------------------------

proptest! {
    /// Every non-marker token's span slices back to its own text.
    #[test]
    fn lexer_spans_roundtrip(src in "[ -~\n]{0,200}") {
        for t in tokenize(&src) {
            if t.kind.is_code() {
                prop_assert_eq!(t.span.slice(&src), t.text.as_str());
            }
        }
    }

    /// INDENT and DEDENT always balance, whatever the input.
    #[test]
    fn lexer_indents_balance(src in "[a-z():= \n\t#'\"]{0,300}") {
        let toks = tokenize(&src);
        let i = toks.iter().filter(|t| t.kind == TokenKind::Indent).count();
        let d = toks.iter().filter(|t| t.kind == TokenKind::Dedent).count();
        prop_assert_eq!(i, d);
        prop_assert_eq!(toks.last().unwrap().kind, TokenKind::EndMarker);
    }

    /// Code tokens never overlap and appear in source order.
    #[test]
    fn lexer_tokens_ordered(src in "[ -~\n]{0,200}") {
        let toks = tokenize(&src);
        let code: Vec<_> = toks.iter().filter(|t| t.kind.is_code()).collect();
        for w in code.windows(2) {
            prop_assert!(w[0].span.end <= w[1].span.start);
        }
    }
}

// ---- sequence comparison ---------------------------------------------------

proptest! {
    /// The LCS is a subsequence of both inputs and maximal w.r.t. length
    /// symmetry.
    #[test]
    fn lcs_is_common_subsequence(
        a in prop::collection::vec(0u8..5, 0..25),
        b in prop::collection::vec(0u8..5, 0..25),
    ) {
        let l = lcs(&a, &b);
        prop_assert!(is_subsequence(&l, &a));
        prop_assert!(is_subsequence(&l, &b));
        prop_assert_eq!(l.len(), lcs_len(&a, &b));
        // Symmetry of length.
        prop_assert_eq!(lcs_len(&a, &b), lcs_len(&b, &a));
    }

    /// Similarity is in [0,1], 1 for identical sequences.
    #[test]
    fn lcs_similarity_bounds(a in prop::collection::vec(0u8..5, 0..25)) {
        prop_assert!((lcs_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let empty: Vec<u8> = vec![];
        let s = lcs_similarity(&a, &empty);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// SequenceMatcher opcodes tile both sequences exactly, and applying
    /// them to `a` reproduces `b`.
    #[test]
    fn opcodes_reconstruct_target(
        a in prop::collection::vec(0u8..4, 0..20),
        b in prop::collection::vec(0u8..4, 0..20),
    ) {
        let m = SequenceMatcher::new(&a, &b);
        let ops = m.opcodes();
        let mut rebuilt: Vec<u8> = Vec::new();
        for op in &ops {
            match op.tag {
                patchitpy::diff::OpTag::Equal => rebuilt.extend(&a[op.i1..op.i2]),
                patchitpy::diff::OpTag::Replace | patchitpy::diff::OpTag::Insert => {
                    rebuilt.extend(&b[op.j1..op.j2])
                }
                patchitpy::diff::OpTag::Delete => {}
            }
        }
        prop_assert_eq!(rebuilt, b);
    }

    /// ratio is symmetric-ish in magnitude and bounded.
    #[test]
    fn matcher_ratio_bounds(
        a in prop::collection::vec(0u8..4, 0..20),
        b in prop::collection::vec(0u8..4, 0..20),
    ) {
        let r = SequenceMatcher::new(&a, &b).ratio();
        prop_assert!((0.0..=1.0).contains(&r));
    }
}

// ---- regex engine -----------------------------------------------------------

proptest! {
    /// Literal patterns (regex-escaped) find themselves in any haystack
    /// that contains them.
    #[test]
    fn regex_finds_escaped_literal(
        needle in "[a-z]{1,8}",
        prefix in "[A-Z0-9 ]{0,10}",
        suffix in "[A-Z0-9 ]{0,10}",
    ) {
        let hay = format!("{prefix}{needle}{suffix}");
        let re = Regex::new(&patchitpy::core::escape_regex(&needle)).unwrap();
        let m = re.find(&hay).expect("literal must match");
        prop_assert_eq!(m.as_str(), needle.as_str());
    }

    /// `find_iter` yields non-overlapping, ordered matches.
    #[test]
    fn regex_find_iter_ordered(hay in "[ab ]{0,40}") {
        let re = Regex::new("a+").unwrap();
        let ms = re.find_iter(&hay);
        for w in ms.windows(2) {
            prop_assert!(w[0].end() <= w[1].start());
        }
        for m in &ms {
            prop_assert!(m.as_str().chars().all(|c| c == 'a'));
        }
    }

    /// replace_all with a literal replacement removes every match.
    #[test]
    fn regex_replace_removes_matches(hay in "[xy.]{0,40}") {
        let re = Regex::new(r"\.").unwrap();
        let out = re.replace_all(&hay, "_");
        prop_assert!(!out.contains('.'));
        prop_assert_eq!(out.len(), hay.len());
    }
}

// ---- statistics ---------------------------------------------------------------

proptest! {
    /// describe() is order-invariant and its quantiles are ordered.
    #[test]
    fn describe_invariants(mut v in prop::collection::vec(-1000.0f64..1000.0, 1..50)) {
        let s1 = describe(&v);
        v.reverse();
        let s2 = describe(&v);
        prop_assert_eq!(s1, s2);
        prop_assert!(s1.min <= s1.q1 && s1.q1 <= s1.median);
        prop_assert!(s1.median <= s1.q3 && s1.q3 <= s1.max);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentile_monotone(v in prop::collection::vec(-100.0f64..100.0, 1..30)) {
        let p25 = percentile(&v, 25.0);
        let p50 = percentile(&v, 50.0);
        let p75 = percentile(&v, 75.0);
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    /// Rank-sum p-values are valid probabilities and symmetric.
    #[test]
    fn rank_sum_valid(
        a in prop::collection::vec(-50.0f64..50.0, 1..30),
        b in prop::collection::vec(-50.0f64..50.0, 1..30),
    ) {
        let r1 = rank_sum(&a, &b);
        let r2 = rank_sum(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }
}

// ---- detector / patcher -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The detector never panics on arbitrary input and findings carry
    /// valid spans.
    #[test]
    fn detector_total_on_arbitrary_text(src in "[ -~\n]{0,300}") {
        let det = Detector::new();
        for f in det.detect(&src) {
            prop_assert!(f.start <= f.end);
            prop_assert!(f.end <= src.len());
            prop_assert_eq!(&src[f.start..f.end], f.matched.as_str());
        }
    }

    /// Patching is idempotent: a second pass changes nothing.
    #[test]
    fn patcher_idempotent(src in "[a-z0-9_ ().,='\"\n]{0,200}") {
        let p = Patcher::new();
        let once = p.patch(&src);
        let twice = p.patch(&once.source);
        prop_assert_eq!(&once.source, &twice.source);
    }

    /// Bytes outside applied patch spans (and before import insertion)
    /// are preserved.
    #[test]
    fn patcher_preserves_unmatched_lines(src in "[a-z =0-9\n]{0,200}") {
        // Input alphabet contains no rule-triggering APIs, so the patch
        // must be the identity.
        let p = Patcher::new();
        let out = p.patch(&src);
        prop_assert!(out.applied.is_empty());
        prop_assert_eq!(out.source, src);
    }
}

fn is_subsequence<T: PartialEq>(sub: &[T], sup: &[T]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|x| it.any(|y| y == x))
}
