//! §III-C maintainability claim, checked with the maintainability index:
//! PatchitPy patches keep MI essentially unchanged; LLM-style patches
//! (extra scaffolding) lower it.

use patchitpy::compare::{LlmKind, LlmTool};
use patchitpy::corpus::generate_corpus;
use patchitpy::metrics::maintainability_index;
use patchitpy::stats::rank_sum;
use patchitpy::Patcher;

#[test]
fn patchitpy_preserves_maintainability_index() {
    let corpus = generate_corpus();
    let patcher = Patcher::new();
    let mut before = Vec::new();
    let mut after = Vec::new();
    for s in corpus.samples.iter().filter(|s| s.vulnerable).take(200) {
        let out = patcher.patch(&s.code);
        if out.changed() {
            before.push(maintainability_index(&s.code));
            after.push(maintainability_index(&out.source));
        }
    }
    assert!(before.len() > 100, "not enough patched samples");
    let mean_delta: f64 =
        before.iter().zip(&after).map(|(b, a)| a - b).sum::<f64>() / before.len() as f64;
    assert!(mean_delta.abs() < 2.0, "PatchitPy should barely move MI; mean Δ = {mean_delta:.2}");
    let test = rank_sum(&before, &after);
    assert!(!test.significant(0.01), "MI distribution shifted significantly: p = {}", test.p_value);
}

#[test]
fn llm_scaffolding_lowers_maintainability() {
    let corpus = generate_corpus();
    let llm = LlmTool::new(LlmKind::Claude37Sonnet, 0x5EED_0077);
    let mut before = Vec::new();
    let mut after = Vec::new();
    for s in corpus.samples.iter().filter(|s| s.vulnerable).take(150) {
        if llm.detect(&s.code, true) {
            before.push(maintainability_index(&s.code));
            after.push(maintainability_index(&llm.patch(&s.code).code));
        }
    }
    assert!(before.len() > 80);
    let mean_before: f64 = before.iter().sum::<f64>() / before.len() as f64;
    let mean_after: f64 = after.iter().sum::<f64>() / after.len() as f64;
    assert!(
        mean_after < mean_before - 1.0,
        "LLM scaffolding should cost MI: {mean_before:.1} -> {mean_after:.1}"
    );
}
