//! Cross-crate integration tests: the full pipeline from corpus
//! generation through detection, patching, and verification.

use patchitpy::compare::{BanditLike, CodeqlLike, DetectionTool, SemgrepLike};
use patchitpy::corpus::{generate_corpus, Model};
use patchitpy::metrics::complexity;
use patchitpy::stats::Confusion;
use patchitpy::{scan, Detector, Patcher};

#[test]
fn corpus_detect_patch_rescan_loop() {
    let corpus = generate_corpus();
    let patcher = Patcher::new();
    let mut patched_files = 0usize;
    let mut clean_after = 0usize;
    for s in corpus.samples.iter().filter(|s| s.vulnerable && s.covered) {
        let out = patcher.patch(&s.code);
        if out.changed() {
            patched_files += 1;
            if patcher.detector().detect(&out.source).is_empty() {
                clean_after += 1;
            }
        }
    }
    assert!(patched_files > 250, "only {patched_files} files patched");
    // The large majority of patched files are fully clean afterwards.
    assert!(clean_after * 100 / patched_files >= 85, "{clean_after}/{patched_files} clean");
}

#[test]
fn patching_never_breaks_the_lexer() {
    let corpus = generate_corpus();
    let patcher = Patcher::new();
    for s in corpus.samples.iter().take(150) {
        let out = patcher.patch(&s.code);
        let errors = patchitpy::lex::tokenize(&out.source)
            .iter()
            .filter(|t| t.kind == patchitpy::lex::TokenKind::Error)
            .count();
        let before = patchitpy::lex::tokenize(&s.code)
            .iter()
            .filter(|t| t.kind == patchitpy::lex::TokenKind::Error)
            .count();
        assert!(
            errors <= before,
            "patching introduced lex errors in sample {}:\n{}",
            s.prompt_id,
            out.source
        );
    }
}

#[test]
fn patchitpy_beats_each_sast_tool_on_recall() {
    let corpus = generate_corpus();
    let det = Detector::new();
    let tools: Vec<Box<dyn DetectionTool>> = vec![
        Box::new(BanditLike::new()),
        Box::new(CodeqlLike::new()),
        Box::new(SemgrepLike::new()),
    ];
    let mut pip = Confusion::new();
    let mut others = vec![Confusion::new(); tools.len()];
    for s in &corpus.samples {
        pip.record(det.is_vulnerable(&s.code), s.vulnerable);
        for (i, t) in tools.iter().enumerate() {
            others[i].record(t.flags(&s.code), s.vulnerable);
        }
    }
    for (i, t) in tools.iter().enumerate() {
        assert!(
            pip.recall() > others[i].recall(),
            "{} recall {:.3} >= PatchitPy {:.3}",
            t.name(),
            others[i].recall(),
            pip.recall()
        );
        assert!(pip.f1() > others[i].f1(), "{} F1 beats PatchitPy", t.name());
    }
}

#[test]
fn truncated_samples_separate_pattern_matching_from_ast_tools() {
    let corpus = generate_corpus();
    let det = Detector::new();
    let bandit = BanditLike::new();
    let codeql = CodeqlLike::new();
    let mut pattern_hits = 0usize;
    let mut ast_hits = 0usize;
    let mut n = 0usize;
    for s in corpus.samples.iter().filter(|s| s.truncated && s.vulnerable && s.covered) {
        n += 1;
        pattern_hits += det.is_vulnerable(&s.code) as usize;
        ast_hits += (bandit.flags(&s.code) || codeql.flags(&s.code)) as usize;
    }
    assert!(n > 0, "no truncated vulnerable samples in corpus");
    assert_eq!(pattern_hits, n, "PatchitPy must handle incomplete snippets");
    assert_eq!(ast_hits, 0, "AST tools must fail on incomplete snippets");
}

#[test]
fn scan_api_round_trip_on_every_model_style() {
    let corpus = generate_corpus();
    for m in Model::all() {
        let sample = corpus
            .by_model(m)
            .into_iter()
            .find(|s| s.vulnerable && s.covered)
            .expect("covered vulnerable sample");
        let report = scan(&sample.code);
        assert!(report.is_vulnerable(), "{m} sample undetected");
        assert!(!report.cwes().is_empty());
    }
}

#[test]
fn patch_complexity_delta_is_minimal_per_file() {
    let corpus = generate_corpus();
    let patcher = Patcher::new();
    let mut deltas = Vec::new();
    for s in corpus.samples.iter().filter(|s| s.vulnerable).take(120) {
        let out = patcher.patch(&s.code);
        if out.changed() {
            let before = complexity(&s.code).mean();
            let after = complexity(&out.source).mean();
            deltas.push((after - before).abs());
        }
    }
    assert!(!deltas.is_empty());
    let mean_delta: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
    assert!(
        mean_delta < 0.15,
        "PatchitPy patches should not move complexity: mean |Δ| = {mean_delta:.3}"
    );
}

#[test]
fn multi_cwe_sample_gets_multiple_fixes() {
    // Paper Table I: one snippet, two OWASP categories, both patched.
    let code = "\
from flask import Flask, request

app = Flask(__name__)

@app.route('/greet')
def greet():
    name = request.args.get('name', '')
    return f'<h1>Hello {name}</h1>'

if __name__ == '__main__':
    app.run(debug=True)
";
    let report = scan(code);
    assert!(report.cwes().contains(&79));
    assert!(report.cwes().contains(&209));
    assert!(report.patch.source.contains("escape(name)"));
    assert!(report.patch.source.contains("debug=False"));
    assert!(report.patch.source.contains("from markupsafe import escape"));
}
